(* Schema check for the HPFC_BENCH_JSON artifact.

   Every timed bench section appends one JSON line to the shared
   artifact; CI runs this checker over the file so the stream cannot
   silently rot (a malformed line, a renamed key, a section that stopped
   emitting).  The container has no JSON library, so the checker carries
   a small recursive-descent parser for the JSON subset the bench
   actually emits — objects, arrays, strings, numbers, booleans, null —
   which is also exactly the subset any downstream consumer needs.

   The per-bench schemas below are the authoritative list of required
   keys; adding a bench section without registering it here fails CI. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --- parser ----------------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> failf "offset %d: expected %C, found %C" c.pos ch x
  | None -> failf "offset %d: expected %C, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else failf "offset %d: unrecognized literal" c.pos

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> failf "offset %d: unterminated string" c.pos
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> failf "offset %d: dangling escape" c.pos
      | Some ch ->
        c.pos <- c.pos + 1;
        (match ch with
        | '"' | '\\' | '/' -> Buffer.add_char b ch
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* the bench never emits \u escapes; accept and keep them
             verbatim so the checker is not the strictest link *)
          Buffer.add_string b "\\u"
        | _ -> failf "offset %d: bad escape %C" c.pos ch);
        go ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when num_char ch -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> failf "offset %d: bad number %S" start s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> failf "offset %d: expected a value, found end of input" c.pos
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_object c
  | Some '[' -> parse_array c
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> failf "offset %d: unexpected %C" c.pos ch

and parse_object c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    c.pos <- c.pos + 1;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec field () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        c.pos <- c.pos + 1;
        field ()
      | _ -> expect c '}'
    in
    field ();
    Obj (List.rev !fields)
  end

and parse_array c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    c.pos <- c.pos + 1;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec item () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        c.pos <- c.pos + 1;
        item ()
      | _ -> expect c ']'
    in
    item ();
    Arr (List.rev !items)
  end

(* Parse one complete JSON document; trailing garbage is an error. *)
let parse (s : string) : (json, string) result =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "offset %d: trailing garbage" c.pos)
  | exception Bad msg -> Error msg

(* --- schemas ---------------------------------------------------------------- *)

(* A bench row schema: the numeric keys that must be present (the bench
   only emits numbers besides the "bench" tag), plus an optional nested
   row schema for a "rows" array. *)
type schema = { top : string list; rows : string list option }

let schemas : (string * schema) list =
  [ ( "time_par",
      {
        top = [ "n"; "reps"; "cores" ];
        rows = Some [ "p"; "ndomains"; "seq_ms"; "par_ms"; "speedup" ];
      } );
    ( "time_async",
      {
        top = [ "n"; "reps"; "cores" ];
        rows = Some [ "p"; "ndomains"; "stepped_ms"; "async_ms"; "speedup" ];
      } );
    ( "time_pack",
      {
        top =
          [ "n"; "p"; "reps"; "cores"; "seq_scalar_eps"; "seq_blit_eps";
            "par_scalar_eps"; "par_blit_eps"; "blit_speedup" ];
        rows = None;
      } );
    ( "time_zero",
      {
        top =
          [ "n"; "p"; "reps"; "canon_staged_eps"; "canon_zero_eps";
            "zero_speedup"; "dist_staged_eps"; "dist_zero_eps";
            "identity_zero_eps"; "canon_zero_staged_bytes"; "canon_zero_runs" ];
        rows = None;
      } );
    ( "time_collective",
      {
        top = [ "n"; "reps"; "cores" ];
        rows =
          Some
            [ "p"; "p2p_ms"; "coll_ms"; "p2p_peak_bytes"; "coll_peak_bytes";
              "phases"; "steps" ];
      } );
    ( "time_serve",
      {
        top = [ "n"; "tenants"; "requests"; "cores" ];
        rows =
          Some
            [ "tenants"; "workers"; "requests"; "serial_rps"; "serve_rps";
              "speedup"; "p50_ms"; "p99_ms"; "fused_remaps" ];
      } );
    ( "fuzz",
      {
        top =
          [ "seed"; "programs"; "executed"; "rejected"; "divergences";
            "pipeline_runs"; "programs_per_sec" ];
        rows = None;
      } );
  ]

let bench_names = List.map fst schemas

let require_num fields key where =
  match List.assoc_opt key fields with
  | Some (Num _) -> Ok ()
  | Some _ -> Error (Printf.sprintf "%s: key %S is not a number" where key)
  | None -> Error (Printf.sprintf "%s: missing key %S" where key)

let rec first_error = function
  | [] -> Ok ()
  | Ok () :: rest -> first_error rest
  | (Error _ as e) :: _ -> e

(* Validate one line of the artifact.  [Ok bench] names the section the
   line belongs to. *)
let check_line (line : string) : (string, string) result =
  match parse line with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok (Obj fields) -> (
    match List.assoc_opt "bench" fields with
    | None -> Error {|missing key "bench"|}
    | Some (Str bench) -> (
      match List.assoc_opt bench schemas with
      | None ->
        Error
          (Printf.sprintf "unknown bench %S, expected one of %s" bench
             (String.concat " | " bench_names))
      | Some schema -> (
        let top =
          first_error
            (List.map (fun k -> require_num fields k bench) schema.top)
        in
        match (top, schema.rows) with
        | Error msg, _ -> Error msg
        | Ok (), None -> Ok bench
        | Ok (), Some row_keys -> (
          match List.assoc_opt "rows" fields with
          | None -> Error (bench ^ {|: missing key "rows"|})
          | Some (Arr rows) -> (
            let check_row i = function
              | Obj rf ->
                first_error
                  (List.map
                     (fun k ->
                       require_num rf k (Printf.sprintf "%s rows[%d]" bench i))
                     row_keys)
              | _ ->
                Error (Printf.sprintf "%s rows[%d]: not an object" bench i)
            in
            match first_error (List.mapi check_row rows) with
            | Ok () when rows <> [] -> Ok bench
            | Ok () -> Error (bench ^ {|: "rows" is empty|})
            | Error _ as e -> e)
          | Some _ -> Error (bench ^ {|: "rows" is not an array|}))))
    | Some _ -> Error {|key "bench" is not a string|})
  | Ok _ -> Error "top level is not an object"

(* Validate a whole artifact (one JSON object per line, blank lines
   ignored).  Returns the per-bench line counts; an empty artifact is an
   error — it means no section wrote anything. *)
let check_lines (lines : string list) : ((string * int) list, string) result =
  let counts = Hashtbl.create 8 in
  let rec go i = function
    | [] -> Ok ()
    | line :: rest ->
      if String.trim line = "" then go (i + 1) rest
      else begin
        match check_line line with
        | Ok bench ->
          Hashtbl.replace counts bench
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts bench));
          go (i + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)
      end
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () ->
    if Hashtbl.length counts = 0 then Error "artifact is empty"
    else
      Ok
        (List.sort compare
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []))
